package check

import (
	"os"
	"path/filepath"
	"testing"
)

// TestActionAlphabetRoundTripIdentity pins String → Parse → canon as the
// identity for every letter of the fault alphabet. The gray letters carry a
// magnitude operand; the drop letter is global and must not carry a target
// (Parse used to tolerate one that Encode then silently erased, so two
// different spellings named the same schedule).
func TestActionAlphabetRoundTripIdentity(t *testing.T) {
	identity := []string{
		"c0@1", "c3@6",
		"u0@1", "u2@4",
		"d@1", "d@6",
		"s0x6@1", "s1x2@3", "s2x12@5",
		"f0x7@1", "f3x1@2", "f1x20@4",
		"k0x-250@1", "k1x500@2", "k2x-900@3",
		"b0x8@1", "b1x2@2", "b3x40@6",
		"c0@1,u1@1,d@2,s0x6@2,f1x7@3,k2x-250@3,b3x8@4",
	}
	for _, enc := range identity {
		s, err := DecodeSchedule(enc)
		if err != nil {
			t.Fatalf("Decode(%q): %v", enc, err)
		}
		if got := s.Encode(); got != enc {
			t.Fatalf("round trip %q → %q", enc, got)
		}
	}

	// canon fills the default magnitude, so the short spelling decodes to
	// the explicit one (one canonical string per action).
	defaults := map[string]string{
		"s0@1": "s0x6@1",
		"f1@2": "f1x7@2",
		"k0@1": "k0x-250@1",
		"b2@3": "b2x8@3",
	}
	for in, want := range defaults {
		s, err := DecodeSchedule(in)
		if err != nil {
			t.Fatalf("Decode(%q): %v", in, err)
		}
		if got := s.Encode(); got != want {
			t.Fatalf("Decode(%q).Encode() = %q, want default-filled %q", in, got, want)
		}
	}

	// canon also orders actions, so permuted spellings converge.
	s, err := DecodeSchedule("s0x6@1,d@1")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Encode(); got != "d@1,s0x6@1" {
		t.Fatalf("canonical order = %q, want %q", got, "d@1,s0x6@1")
	}

	rejected := []string{
		"d0@1",       // drop is global; a target would alias d@1
		"dx3@1",      // drop takes no magnitude
		"c0x2@1",     // crash takes no magnitude
		"u1x2@1",     // unplug takes no magnitude
		"s@1",        // gray faults need a target
		"sx6@1",      // ... even with a magnitude
		"s0x1@1",     // slowdown below 2x is a no-op
		"s0x0@1",     //
		"b0x1@1",     // brownout below 2x is a no-op
		"k0x0@1",     // zero drift is a no-op
		"k0x-1000@1", // the local clock would stop
		"f0x0@1",     // flap needs a positive down phase
		"s0x@1",      // empty magnitude
	}
	for _, bad := range rejected {
		if _, err := DecodeSchedule(bad); err == nil {
			t.Fatalf("Decode(%q) accepted", bad)
		}
	}
}

// replayFixture replays a committed artifact from testdata.
func replayFixture(t *testing.T, name string) Result {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := ReadArtifact(f)
	if err != nil {
		t.Fatal(err)
	}
	return Replay(a)
}

// The two gray artifacts were found by the ≤2-gray-fault sweep and shrunk
// with mamscheck shrink. Both exercise the same seam — a loss burst plus a
// slowed active — and between them they pinned four distinct protocol bugs
// (git history holds the pre-fix versions of these tests asserting the
// violations):
//
// gray-slow-drop-durable: a batch commits on its standbys' acks, then an
// ack timeout on the next batch demotes every standby — destroying the
// cached copies the commit relied on — while the pool backstop write for
// the acked batch is still in flight. The deposed active's put-retry loop
// then overwrites the successor's sn space. Fixed by holding laggard
// fences until the pool-durability watermark catches the commit watermark
// (fenceLaggard/notePoolDurable), by stopping backstop retries on
// deposition, and by waiting out pool catch-up holes (catchup-gap) that an
// in-flight backstop write will fill.
//
// gray-slow-drop-heal: a takeover view that demotes a member races its
// registration with the new active; the member obeys the stale demotion
// locally while the view lists it standby, a split neither the renew scan
// (view-driven) nor any push resolves — it idles as a junior past the heal
// budget. Fixed by re-registering on role/view splits (adoptView case +
// sanity-loop backstop) and by refusing Demote orders from stale epochs.
// The same run also lost acked ops through §IV.C duplicate handling: a
// retried create answered "exists" from sealed-but-uncommitted tree state,
// which the client rightly treats as success; failOpAtBarrier now holds
// state-dependent error replies until the observed state commits.
//
// Both replays must now stay violation-free and heal inside the budget.
func TestGraySlowDropDurableFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second replay in -short mode")
	}
	r := replayFixture(t, "gray-slow-drop-durable.artifact")
	if r.Failed() || !r.Healed {
		t.Fatalf("fixture regressed: failed=%v healed=%v violations=%v",
			r.Failed(), r.Healed, r.Violations)
	}
}

func TestGraySlowDropHealFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second replay in -short mode")
	}
	r := replayFixture(t, "gray-slow-drop-heal.artifact")
	if r.Failed() || !r.Healed {
		t.Fatalf("fixture regressed: failed=%v healed=%v violations=%v",
			r.Failed(), r.Healed, r.Violations)
	}
}

// gray-flap-converge was found by the `mamsbench -exp gray` audit (a seed
// the sweep's fixed seed missed): a link flap on the active drops the
// CommitNotice for the final batch, load stops, and the standby holds the
// tail cached-but-uncommitted forever — roles heal, but its tree digest
// stays one sn behind the active's ("converged" violation). Fixed by
// re-advertising the commit watermark from the active's sanity loop
// (resendCommitWatermark), which makes notice delivery converging once
// links heal.
func TestGrayFlapConvergeFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second replay in -short mode")
	}
	r := replayFixture(t, "gray-flap-converge.artifact")
	if r.Failed() || !r.Healed {
		t.Fatalf("fixture regressed: failed=%v healed=%v violations=%v",
			r.Failed(), r.Healed, r.Violations)
	}
}
