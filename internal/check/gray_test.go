package check

import (
	"os"
	"path/filepath"
	"testing"
)

// TestActionAlphabetRoundTripIdentity pins String → Parse → canon as the
// identity for every letter of the fault alphabet. The gray letters carry a
// magnitude operand; the drop letter is global and must not carry a target
// (Parse used to tolerate one that Encode then silently erased, so two
// different spellings named the same schedule).
func TestActionAlphabetRoundTripIdentity(t *testing.T) {
	identity := []string{
		"c0@1", "c3@6",
		"u0@1", "u2@4",
		"d@1", "d@6",
		"s0x6@1", "s1x2@3", "s2x12@5",
		"f0x7@1", "f3x1@2", "f1x20@4",
		"k0x-250@1", "k1x500@2", "k2x-900@3",
		"b0x8@1", "b1x2@2", "b3x40@6",
		"c0@1,u1@1,d@2,s0x6@2,f1x7@3,k2x-250@3,b3x8@4",
	}
	for _, enc := range identity {
		s, err := DecodeSchedule(enc)
		if err != nil {
			t.Fatalf("Decode(%q): %v", enc, err)
		}
		if got := s.Encode(); got != enc {
			t.Fatalf("round trip %q → %q", enc, got)
		}
	}

	// canon fills the default magnitude, so the short spelling decodes to
	// the explicit one (one canonical string per action).
	defaults := map[string]string{
		"s0@1": "s0x6@1",
		"f1@2": "f1x7@2",
		"k0@1": "k0x-250@1",
		"b2@3": "b2x8@3",
	}
	for in, want := range defaults {
		s, err := DecodeSchedule(in)
		if err != nil {
			t.Fatalf("Decode(%q): %v", in, err)
		}
		if got := s.Encode(); got != want {
			t.Fatalf("Decode(%q).Encode() = %q, want default-filled %q", in, got, want)
		}
	}

	// canon also orders actions, so permuted spellings converge.
	s, err := DecodeSchedule("s0x6@1,d@1")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Encode(); got != "d@1,s0x6@1" {
		t.Fatalf("canonical order = %q, want %q", got, "d@1,s0x6@1")
	}

	rejected := []string{
		"d0@1",       // drop is global; a target would alias d@1
		"dx3@1",      // drop takes no magnitude
		"c0x2@1",     // crash takes no magnitude
		"u1x2@1",     // unplug takes no magnitude
		"s@1",        // gray faults need a target
		"sx6@1",      // ... even with a magnitude
		"s0x1@1",     // slowdown below 2x is a no-op
		"s0x0@1",     //
		"b0x1@1",     // brownout below 2x is a no-op
		"k0x0@1",     // zero drift is a no-op
		"k0x-1000@1", // the local clock would stop
		"f0x0@1",     // flap needs a positive down phase
		"s0x@1",      // empty magnitude
	}
	for _, bad := range rejected {
		if _, err := DecodeSchedule(bad); err == nil {
			t.Fatalf("Decode(%q) accepted", bad)
		}
	}
}

// replayFixture replays a committed artifact from testdata.
func replayFixture(t *testing.T, name string) Result {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := ReadArtifact(f)
	if err != nil {
		t.Fatal(err)
	}
	return Replay(a)
}

// The two gray artifacts were found by the ≤2-gray-fault sweep and shrunk
// with mamscheck shrink. Both exercise the same seam: a loss burst plus a
// slowed active.
//
// gray-slow-drop-durable: the active commits a batch on its standbys' acks,
// then an ack timeout on the next batch demotes every standby — destroying
// the cached copies the commit relied on — while the pool backstop write for
// the acked batch is still in flight. The active later self-fences and
// hard-resets, and the elected junior's pool catch-up stops at the missing
// batch, minting conflicting serial numbers: acknowledged operations vanish.
//
// gray-slow-drop-heal: the slowed node's heartbeats stall until its session
// expires during the loss burst; the one-shot lock-deleted watch pushes are
// all swallowed by the burst, and with no re-arm path the election stalls
// far past the heal budget.
//
// These tests currently pin the *failures* so the repair lands against a
// reproducible baseline; the fix commit flips them to assert a clean heal.
func TestGraySlowDropDurableFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second replay in -short mode")
	}
	r := replayFixture(t, "gray-slow-drop-durable.artifact")
	if !r.Failed() || r.FirstInvariant() != "durable" {
		t.Fatalf("fixture no longer reproduces: failed=%v first=%q",
			r.Failed(), r.FirstInvariant())
	}
}

func TestGraySlowDropHealFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second replay in -short mode")
	}
	r := replayFixture(t, "gray-slow-drop-heal.artifact")
	if !r.Failed() || r.FirstInvariant() != "healed" {
		t.Fatalf("fixture no longer reproduces: failed=%v first=%q",
			r.Failed(), r.FirstInvariant())
	}
}
