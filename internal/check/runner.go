package check

import (
	"fmt"

	"mams/internal/cluster"
	"mams/internal/fsclient"
	"mams/internal/mams"
	"mams/internal/sim"
	"mams/internal/ssp"
	"mams/internal/trace"
	"mams/internal/workload"
)

// Config fixes everything about a checked run except the fault schedule.
// The zero value is usable: withDefaults fills the paper-scale small scope
// (1 group, 1 active + 3 backups) the explorer is designed for.
type Config struct {
	Seed      uint64
	Backups   int      // hot standbys per group (group size = Backups+1)
	Steps     int      // number of injectable step boundaries
	StepEvery sim.Time // max virtual time between step boundaries
	Load      int      // concurrent workload operations in flight

	HealBudget  sim.Time // virtual time allowed for recovery after faults stop
	QuiesceFor  sim.Time // drain window before convergence/durability audit
	EventBudget uint64   // max simulator events per run (0 = default, not unlimited)

	Bug     string // planted regression: "" or "dup-sn" (skip duplicate-sn suppression)
	SyncSSP bool   // run with synchronous pool flush enabled

	// GroupCommit runs with the adaptive group-commit + pipelined journal
	// path; AsyncAck additionally acks mutations at seal (implies
	// GroupCommit) and switches the durability audit to watermark semantics.
	GroupCommit bool
	AsyncAck    bool

	// OnEnv, if set, observes the freshly-built environment before the run
	// starts — experiments subscribe to the trace or registry here (e.g.
	// `mamsbench -exp gray` mines "who degraded and when" from fault and
	// check events). Not part of the replay artifact: it must not perturb
	// the simulation.
	OnEnv func(*cluster.Env) `json:"-"`
}

// Defaults sized for a ~1-2 s wall-clock run on one core, which is what
// makes exhaustive two-fault exploration (~1.3k runs) tractable.
const (
	DefaultSteps       = 6
	DefaultStepEvery   = 2 * sim.Second
	DefaultLoad        = 2
	DefaultHealBudget  = 90 * sim.Second
	DefaultQuiesce     = 10 * sim.Second
	DefaultEventBudget = 25_000_000
)

func (c Config) withDefaults() Config {
	if c.Backups <= 0 {
		c.Backups = 3
	}
	if c.Steps <= 0 {
		c.Steps = DefaultSteps
	}
	if c.StepEvery <= 0 {
		c.StepEvery = DefaultStepEvery
	}
	if c.Load <= 0 {
		c.Load = DefaultLoad
	}
	if c.HealBudget <= 0 {
		c.HealBudget = DefaultHealBudget
	}
	if c.QuiesceFor <= 0 {
		c.QuiesceFor = DefaultQuiesce
	}
	if c.EventBudget == 0 {
		c.EventBudget = DefaultEventBudget
	}
	return c
}

// Result is the outcome of one schedule execution.
type Result struct {
	Schedule   Schedule
	Violations []Violation
	Truncated  int    // violations dropped past the report cap
	Healed     bool   // cluster fully recovered within HealBudget
	Ops        int    // workload operations acked during the run
	Events     uint64 // simulator events consumed
}

// Failed reports whether any invariant was violated.
func (r Result) Failed() bool { return len(r.Violations) > 0 }

// FirstInvariant names the first violated invariant ("" if clean).
func (r Result) FirstInvariant() string {
	if len(r.Violations) == 0 {
		return ""
	}
	return r.Violations[0].Invariant
}

// RunSchedule builds a fresh single-group cluster from cfg, drives a
// create/mkdir workload through it, injects sched's faults at protocol step
// boundaries, heals, quiesces, and audits the full invariant set. Identical
// (cfg, sched) inputs replay the identical event sequence — every source of
// randomness flows from cfg.Seed through the simulation RNG.
func RunSchedule(cfg Config, sched Schedule) Result {
	cfg = cfg.withDefaults()
	sched = sched.canon()
	res := Result{Schedule: sched}

	env := cluster.NewEnv(cfg.Seed)
	env.World.SetStepLimit(0) // budget enforced via RunForLimited below
	if cfg.OnEnv != nil {
		cfg.OnEnv(env)
	}

	params := mams.DefaultParams()
	params.TraceAppends = true
	params.SyncSSP = cfg.SyncSSP
	params.GroupCommit = cfg.GroupCommit || cfg.AsyncAck
	params.AsyncAck = cfg.AsyncAck
	if cfg.Bug == "dup-sn" {
		params.SkipDupSuppression = true
	}
	c := cluster.BuildMAMS(env, cluster.MAMSSpec{
		Groups:          1,
		BackupsPerGroup: cfg.Backups,
		Params:          params,
	})
	mon := Attach(env, c)

	finish := func() Result {
		res.Violations = mon.Violations()
		res.Truncated = mon.Truncated()
		res.Events = env.World.Steps()
		return res
	}

	if !c.AwaitStable(30 * sim.Second) {
		mon.record("boot", "", fmt.Sprintf("group never stabilized: %v", c.RolesOf(0)))
		return finish()
	}

	var results []fsclient.Result
	drv := workload.NewDriver(env, c.AsSystem(), 2, func(r fsclient.Result) {
		results = append(results, r)
	})
	drv.Setup(2)

	// Step boundaries: the counter advances on every protocol transition the
	// trace reports (role changes, elections, failover milestones) and at
	// latest every StepEvery of virtual time, so schedules hit "interesting"
	// instants without depending on wall-clock-scale timing.
	injector := &injector{cfg: cfg, env: env, c: c, pending: sched}
	env.Trace.Subscribe(func(e trace.Event) {
		switch e.Kind {
		case trace.KindState, trace.KindElection, trace.KindFailover:
			injector.advance()
		}
	})
	var tick func()
	tick = func() {
		injector.advance()
		if injector.step <= cfg.Steps {
			env.World.After(cfg.StepEvery, "check-step-tick", tick)
		}
	}
	env.World.After(cfg.StepEvery, "check-step-tick", tick)

	stop := drv.Continuous(workload.CreateMkdir(), cfg.Load)

	// Fault window: run in slices so the state invariants are sampled
	// frequently, under a hard event budget so a livelocked schedule reports
	// a "live" violation instead of hanging the explorer.
	budget := cfg.EventBudget
	window := sim.Time(cfg.Steps+2) * cfg.StepEvery
	runSlices := func(total sim.Time) bool {
		const slice = 250 * sim.Millisecond
		for done := sim.Time(0); done < total; done += slice {
			steps, hit := env.World.RunForLimited(slice, budget)
			if steps >= budget {
				budget = 0
			} else {
				budget -= steps
			}
			mon.Sample()
			if hit || budget == 0 {
				mon.record("live", "", fmt.Sprintf(
					"event budget %d exhausted at %v (livelock?)", cfg.EventBudget, env.Now()))
				return false
			}
		}
		return true
	}
	if !runSlices(window) {
		stop()
		return finish()
	}

	// Stop the load first: recovery is judged on a quiescing system, as a
	// junior chasing a saturated journal can lag the active indefinitely
	// without that being a protocol fault.
	env.World.Defer("check-stop-load", stop)
	if !runSlices(sim.Second) {
		return finish()
	}

	// Heal everything and give the protocol HealBudget to converge back to
	// one active plus all-hot standbys.
	env.World.Defer("check-heal", func() {
		injector.clearDrop()
		injector.clearGray()
		c.HealAll()
	})
	healPoll := 500 * sim.Millisecond
	for waited := sim.Time(0); ; waited += healPoll {
		if !runSlices(healPoll) {
			return finish()
		}
		if mon.HealedNow() {
			res.Healed = true
			break
		}
		if waited >= cfg.HealBudget {
			mon.RequireHealed()
			break
		}
	}

	// Quiesce: drain any remaining in-flight work, then audit.
	if !runSlices(cfg.QuiesceFor) {
		return finish()
	}

	mon.CheckConverged()
	// The systematic scope never loses a majority of the group at once, so
	// every acked op must survive to the end of the run. Under AsyncAck the
	// promise is per-watermark rather than per-ack, so the audit switches
	// to watermark semantics.
	if cfg.AsyncAck {
		mon.CheckDurableWatermark(results, env.Now())
	} else {
		mon.CheckDurable(results, env.Now())
	}
	for _, r := range results {
		if r.Err == nil {
			res.Ops++
		}
	}
	return finish()
}

// Replay runs an artifact exactly as recorded.
func Replay(a Artifact) Result { return RunSchedule(a.Config(), a.Schedule) }

// injector applies due actions each time the step counter advances. Faults
// are applied through World.Defer rather than inline: advance can be called
// from a trace subscriber running inside a server's own handler, and
// crashing a node mid-handler would be reentrant.
type injector struct {
	cfg     Config
	env     *cluster.Env
	c       *cluster.MAMSCluster
	pending Schedule
	step    int
	dropN   int      // nesting count of active drop bursts
	flaps   []func() // stop functions for in-flight flap cycles
	grayed  bool     // any persistent gray fault applied (cleared at heal)
}

func (in *injector) advance() {
	if in.step > in.cfg.Steps {
		return
	}
	in.step++
	for len(in.pending) > 0 && in.pending[0].Step <= in.step {
		a := in.pending[0]
		in.pending = in.pending[1:]
		in.env.World.Defer("check-inject", func() { in.apply(a) })
	}
}

func (in *injector) apply(a Action) {
	members := in.c.Groups[0]
	switch a.Kind {
	case Crash:
		if a.Target < len(members) {
			in.env.Trace.Emit(trace.KindCheck, string(members[a.Target].Node().ID()),
				"inject-crash", "step", fmt.Sprint(a.Step))
			members[a.Target].Shutdown()
		}
	case Unplug:
		if a.Target < len(members) {
			nd := members[a.Target].Node()
			in.env.Trace.Emit(trace.KindCheck, string(nd.ID()),
				"inject-unplug", "step", fmt.Sprint(a.Step))
			nd.Unplug()
		}
	case Drop:
		in.env.Trace.Emit(trace.KindCheck, "", "inject-drop", "step", fmt.Sprint(a.Step))
		in.dropN++
		in.env.Net.SetLoss(1.0)
		in.env.World.After(2*sim.Second, "check-drop-end", func() {
			in.dropN--
			if in.dropN == 0 {
				in.env.Net.SetLoss(0)
			}
		})
	case Slow:
		if a.Target < len(members) {
			nd := members[a.Target].Node()
			in.env.Trace.Emit(trace.KindCheck, string(nd.ID()),
				"inject-slow", "step", fmt.Sprint(a.Step), "mag", fmt.Sprint(a.Mag))
			nd.SetSlowdown(float64(a.Mag))
			in.grayed = true
		}
	case Skew:
		if a.Target < len(members) {
			nd := members[a.Target].Node()
			in.env.Trace.Emit(trace.KindCheck, string(nd.ID()),
				"inject-skew", "step", fmt.Sprint(a.Step), "mag", fmt.Sprint(a.Mag))
			nd.SetClockSkew(float64(a.Mag) / 1000)
			in.grayed = true
		}
	case Flap:
		if a.Target < len(members) {
			src := members[a.Target].Node().ID()
			in.env.Trace.Emit(trace.KindCheck, string(src),
				"inject-flap", "step", fmt.Sprint(a.Step), "mag", fmt.Sprint(a.Mag))
			down := sim.Time(a.Mag) * 100 * sim.Millisecond
			for i, m := range members {
				if i == a.Target {
					continue
				}
				in.flaps = append(in.flaps, in.env.Net.Flap(src, m.Node().ID(), sim.Second, down))
			}
		}
	case Brownout:
		if a.Target < len(members) {
			srv := members[a.Target]
			in.env.Trace.Emit(trace.KindCheck, string(srv.Node().ID()),
				"inject-brownout", "step", fmt.Sprint(a.Step), "mag", fmt.Sprint(a.Mag))
			srv.Pool().SetBrownout(ssp.Brownout{SlowFactor: float64(a.Mag), FailEvery: 3})
			in.grayed = true
		}
	}
}

// clearDrop force-ends any in-flight drop burst at heal time.
func (in *injector) clearDrop() {
	in.dropN = 0
	in.env.Net.SetLoss(0)
}

// clearGray lifts every persistent gray fault at heal time: flap cycles
// stop (healing their links), slowdown/skew/brownout reset to healthy.
// Recovery is then judged on clean hardware, same as HealAll restarting
// crashed processes.
func (in *injector) clearGray() {
	for _, stop := range in.flaps {
		stop()
	}
	in.flaps = nil
	if !in.grayed {
		return
	}
	in.grayed = false
	for _, srv := range in.c.Groups[0] {
		srv.Node().SetSlowdown(1)
		srv.Node().SetClockSkew(0)
		srv.Pool().SetBrownout(ssp.Brownout{})
	}
}
