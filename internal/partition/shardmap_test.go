package partition

import (
	"fmt"
	"testing"
)

// The uniform map must route identically to the pre-shard static
// hash(path)%n partitioner at every group count: slot count is a multiple
// of the group count, so (h % slots) % groups == h % groups.
func TestUniformMapMatchesStaticHashing(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 64, 256, 512} {
		p := New(n)
		for i := 0; i < 500; i++ {
			path := fmt.Sprintf("/bench/d%d/f%06d", i%7, i)
			want := int(hashStr(path) % uint64(n))
			if got := p.HomeGroup(path); got != want {
				t.Fatalf("n=%d path=%s: HomeGroup=%d want static %d", n, path, got, want)
			}
		}
	}
}

func TestMoveBumpsEpochAndReroutes(t *testing.T) {
	p := New(4)
	path := "/bench/victim"
	slot := p.HomeSlot(path)
	from := p.HomeGroup(path)
	to := (from + 1) % 4

	m2, err := p.Map().Move(slot, to)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Epoch() != p.Epoch()+1 {
		t.Fatalf("epoch %d, want %d", m2.Epoch(), p.Epoch()+1)
	}
	if p.HomeGroup(path) != from {
		t.Fatal("Move mutated the original map")
	}
	if !p.Install(m2) {
		t.Fatal("Install rejected a newer map")
	}
	if p.HomeGroup(path) != to {
		t.Fatalf("after move, HomeGroup=%d want %d", p.HomeGroup(path), to)
	}
	// Only the moved slot changed.
	if d := m2.Diff(NewMap(4, DefaultSlotsPerGroup)); len(d) != 1 || d[0] != slot {
		t.Fatalf("diff = %v, want [%d]", d, slot)
	}
}

func TestInstallRejectsStaleAndMismatched(t *testing.T) {
	p := New(4)
	m2, _ := p.Map().Move(0, 1)
	if !p.Install(m2) {
		t.Fatal("newer map rejected")
	}
	if p.Install(NewMap(4, DefaultSlotsPerGroup)) {
		t.Fatal("epoch-0 map accepted over epoch-1")
	}
	if p.Install(m2) {
		t.Fatal("same-epoch map accepted")
	}
	other, _ := NewMap(8, DefaultSlotsPerGroup).Move(0, 1)
	if p.Install(other) {
		t.Fatal("map with different shape accepted")
	}
}

func TestSplitAndMergeGroup(t *testing.T) {
	m := NewMap(4, 8)
	split, err := m.SplitGroup(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := split.Counts()
	if c[0] != 4 || c[2] != 12 {
		t.Fatalf("counts after split = %v", c)
	}
	merged, err := split.MergeGroup(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	c = merged.Counts()
	if c[0] != 0 || c[1] != 12 {
		t.Fatalf("counts after merge = %v", c)
	}
	if merged.Epoch() != 2 {
		t.Fatalf("epoch = %d", merged.Epoch())
	}
	if _, err := merged.MergeGroup(3, 3); err == nil {
		t.Fatal("self-merge must fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := NewMap(8, 8)
	m, _ = m.Move(3, 5)
	m, _ = m.Move(17, 0)
	got, err := DecodeMap(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch() != m.Epoch() || got.Groups() != m.Groups() || got.Slots() != m.Slots() {
		t.Fatalf("round trip changed shape: %+v vs %+v", got, m)
	}
	for s := 0; s < m.Slots(); s++ {
		if got.Group(s) != m.Group(s) {
			t.Fatalf("slot %d: %d != %d", s, got.Group(s), m.Group(s))
		}
	}
	if _, err := DecodeMap([]byte(`{"epoch":1,"groups":2,"assign":[0,7]}`)); err == nil {
		t.Fatal("out-of-range assignment must fail decode")
	}
	if _, err := DecodeMap([]byte(`not json`)); err == nil {
		t.Fatal("garbage must fail decode")
	}
}

func TestCloneIsolatesInstalls(t *testing.T) {
	p := New(4)
	q := p.Clone()
	m2, _ := p.Map().Move(0, 1)
	p.Install(m2)
	if q.Epoch() != 0 {
		t.Fatal("install on p leaked into clone q")
	}
	if p.Epoch() != 1 {
		t.Fatal("install lost")
	}
}

// hashStr must stay allocation-free: it runs on every routing decision on
// both the client and the server hot path.
func TestHashStrAllocFree(t *testing.T) {
	paths := []string{"/bench/d000/f000123", "/a", "/deeply/nested/path/with/many/components/file.dat"}
	avg := testing.AllocsPerRun(1000, func() {
		for _, s := range paths {
			if hashStr(s) == 0 {
				t.Fail()
			}
		}
	})
	if avg != 0 {
		t.Fatalf("hashStr allocates %.1f allocs/op, want 0", avg)
	}
}

// Routing as a whole (slot lookup + plan-free HomeGroup) must also be
// allocation-free.
func TestHomeGroupAllocFree(t *testing.T) {
	p := New(64)
	avg := testing.AllocsPerRun(1000, func() {
		p.HomeGroup("/bench/d000/f000123")
		p.DirMasterGroup("/bench/d000/f000123")
	})
	if avg != 0 {
		t.Fatalf("HomeGroup allocates %.1f allocs/op, want 0", avg)
	}
}

var sinkU64 uint64
var sinkInt int

func BenchmarkHashStr(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkU64 = hashStr("/bench/d000/f000123")
	}
}

func BenchmarkHomeGroup(b *testing.B) {
	p := New(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkInt = p.HomeGroup("/bench/d000/f000123")
	}
}
