// Package partition implements the hash-based namespace partitioning that
// the Clover File System (the paper's prototype, [28]) uses to spread the
// global namespace over multiple metadata-server replica groups.
//
// The scheme reproduced here:
//
//   - The directory skeleton is replicated in every group, so path
//     resolution is always local.
//   - A file's entry lives in exactly one home group, chosen by hashing the
//     full path.
//   - create and getfileinfo therefore touch a single group and scale with
//     the number of groups, while mkdir, delete and rename are distributed
//     transactions across groups — exactly the split the paper reports in
//     Figure 5.
//
// Placement is indirected through an epoch-versioned shard Map (shardmap.go):
// paths hash to one of a fixed set of slots and slots are assigned to
// groups. The default assignment reproduces plain hash(path)%groups, but
// slots can be moved between groups at runtime (live migration), with the
// epoch acting as the cache-invalidation fence between clients and servers.
package partition

// Strategy selects how file entries map to groups.
type Strategy uint8

// Partitioning strategies. The paper's CFS hashes full paths; the paper's
// conclusion names "exploring other namespace management methods" as future
// work, which BySubtree implements: whole top-level subtrees stick to one
// group (better locality, worse balance under hot directories — the A5
// ablation quantifies the trade).
const (
	ByPath Strategy = iota
	BySubtree
)

// Partitioner maps paths to replica groups through an installable shard
// map. A Partitioner is a per-process cache: each server and each client
// holds its own (via Clone) and swaps in newer maps as it learns of them.
// It is not safe for concurrent use, matching the single-threaded
// event-loop discipline of the simulation.
type Partitioner struct {
	strategy Strategy
	m        *Map
}

// New returns a full-path-hash partitioner over n groups (n >= 1).
func New(n int) *Partitioner {
	return NewWithStrategy(n, ByPath)
}

// NewWithStrategy returns a partitioner with an explicit strategy.
func NewWithStrategy(n int, s Strategy) *Partitioner {
	return NewSharded(n, DefaultSlotsPerGroup, s)
}

// NewSharded returns a partitioner whose initial map has n*slotsPerGroup
// slots assigned round-robin, which routes identically to hash(path)%n.
func NewSharded(n, slotsPerGroup int, s Strategy) *Partitioner {
	if n < 1 {
		panic("partition: need at least one group")
	}
	return &Partitioner{strategy: s, m: NewMap(n, slotsPerGroup)}
}

// topLevel returns the first path component ("/a/b/c" → "/a").
func topLevel(path string) string {
	for i := 1; i < len(path); i++ {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return path
}

// Groups returns the number of groups.
func (p *Partitioner) Groups() int { return p.m.groups }

// Strategy returns the placement strategy.
func (p *Partitioner) Strategy() Strategy { return p.strategy }

// Map returns the currently installed shard map (immutable; safe to share).
func (p *Partitioner) Map() *Map { return p.m }

// Epoch returns the installed map's epoch.
func (p *Partitioner) Epoch() uint64 { return p.m.epoch }

// Install adopts m if it is strictly newer than the installed map and
// shape-compatible (same slot and group counts). Returns true if adopted.
func (p *Partitioner) Install(m *Map) bool {
	if m == nil || m.epoch <= p.m.epoch {
		return false
	}
	if m.groups != p.m.groups || len(m.assign) != len(p.m.assign) {
		return false
	}
	p.m = m
	return true
}

// Clone returns an independent Partitioner sharing the (immutable) map.
// Each server and client owns a clone so map installs never bleed between
// processes — the whole point of the stale-epoch invalidation protocol.
func (p *Partitioner) Clone() *Partitioner {
	cp := *p
	return &cp
}

// hashStr is FNV-1a inlined over the string: this is the client and server
// hot path (every routing decision), so it must not allocate. The stdlib
// fnv.New64a()+Write route costs two heap allocations per call.
func hashStr(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// HomeSlot returns the shard slot owning the file entry for path.
func (p *Partitioner) HomeSlot(path string) int {
	if p.strategy == BySubtree {
		return int(hashStr(topLevel(path)) % uint64(len(p.m.assign)))
	}
	return int(hashStr(path) % uint64(len(p.m.assign)))
}

// HomeGroup returns the group owning the file entry for path.
func (p *Partitioner) HomeGroup(path string) int {
	return int(p.m.assign[p.HomeSlot(path)])
}

// DirMasterGroup returns the group that coordinates directory-entry
// updates for the directory containing path.
func (p *Partitioner) DirMasterGroup(path string) int {
	slot := int(hashStr(parentDir(path)) % uint64(len(p.m.assign)))
	return int(p.m.assign[slot])
}

// parentDir returns the directory component of path.
func parentDir(path string) string {
	for i := len(path) - 1; i > 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "/"
}

// OpClass describes how an operation spreads over groups.
type OpClass uint8

// Operation classes.
const (
	// ClassLocal runs entirely inside one group.
	ClassLocal OpClass = iota
	// ClassPair is a two-group distributed transaction.
	ClassPair
	// ClassGlobal must run in every group (directory skeleton updates).
	ClassGlobal
)

// CreatePlan: create(path) is local to the file's home group.
func (p *Partitioner) CreatePlan(path string) (OpClass, []int) {
	return ClassLocal, []int{p.HomeGroup(path)}
}

// StatPlan: getfileinfo(path) is local to the file's home group.
func (p *Partitioner) StatPlan(path string) (OpClass, []int) {
	return ClassLocal, []int{p.HomeGroup(path)}
}

// MkdirPlan: directory creation updates the replicated skeleton in every
// group; the dir-master group coordinates.
func (p *Partitioner) MkdirPlan(path string) (OpClass, []int) {
	if p.m.groups == 1 {
		return ClassLocal, []int{0}
	}
	return ClassGlobal, p.allGroupsLeadBy(p.DirMasterGroup(path))
}

// DeletePlan: file deletion touches the home group and the dir-master
// group (parent-directory bookkeeping) — a two-phase commit when they
// differ.
func (p *Partitioner) DeletePlan(path string) (OpClass, []int) {
	home, master := p.HomeGroup(path), p.DirMasterGroup(path)
	if home == master || p.m.groups == 1 {
		return ClassLocal, []int{home}
	}
	return ClassPair, []int{home, master}
}

// RenamePlan: rename moves a file between home groups and updates both
// parent directories; when any differ it is a distributed transaction led
// by the source home group.
func (p *Partitioner) RenamePlan(src, dst string) (OpClass, []int) {
	groups := dedup([]int{
		p.HomeGroup(src), p.HomeGroup(dst),
		p.DirMasterGroup(src), p.DirMasterGroup(dst),
	})
	if len(groups) == 1 {
		return ClassLocal, groups
	}
	return ClassPair, groups
}

// allGroupsLeadBy lists every group with lead first.
func (p *Partitioner) allGroupsLeadBy(lead int) []int {
	out := make([]int, 0, p.m.groups)
	out = append(out, lead)
	for g := 0; g < p.m.groups; g++ {
		if g != lead {
			out = append(out, g)
		}
	}
	return out
}

func dedup(in []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
