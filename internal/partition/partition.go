// Package partition implements the hash-based namespace partitioning that
// the Clover File System (the paper's prototype, [28]) uses to spread the
// global namespace over multiple metadata-server replica groups.
//
// The scheme reproduced here:
//
//   - The directory skeleton is replicated in every group, so path
//     resolution is always local.
//   - A file's entry lives in exactly one home group, chosen by hashing the
//     full path.
//   - create and getfileinfo therefore touch a single group and scale with
//     the number of groups, while mkdir, delete and rename are distributed
//     transactions across groups — exactly the split the paper reports in
//     Figure 5.
package partition

import "hash/fnv"

// Strategy selects how file entries map to groups.
type Strategy uint8

// Partitioning strategies. The paper's CFS hashes full paths; the paper's
// conclusion names "exploring other namespace management methods" as future
// work, which BySubtree implements: whole top-level subtrees stick to one
// group (better locality, worse balance under hot directories — the A5
// ablation quantifies the trade).
const (
	ByPath Strategy = iota
	BySubtree
)

// Partitioner maps paths to replica groups.
type Partitioner struct {
	groups   int
	strategy Strategy
}

// New returns a full-path-hash partitioner over n groups (n >= 1).
func New(n int) *Partitioner {
	return NewWithStrategy(n, ByPath)
}

// NewWithStrategy returns a partitioner with an explicit strategy.
func NewWithStrategy(n int, s Strategy) *Partitioner {
	if n < 1 {
		panic("partition: need at least one group")
	}
	return &Partitioner{groups: n, strategy: s}
}

// topLevel returns the first path component ("/a/b/c" → "/a").
func topLevel(path string) string {
	for i := 1; i < len(path); i++ {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return path
}

// Groups returns the number of groups.
func (p *Partitioner) Groups() int { return p.groups }

func hashStr(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// HomeGroup returns the group owning the file entry for path.
func (p *Partitioner) HomeGroup(path string) int {
	if p.strategy == BySubtree {
		return int(hashStr(topLevel(path)) % uint64(p.groups))
	}
	return int(hashStr(path) % uint64(p.groups))
}

// DirMasterGroup returns the group that coordinates directory-entry
// updates for the directory containing path.
func (p *Partitioner) DirMasterGroup(path string) int {
	return int(hashStr(parentDir(path)) % uint64(p.groups))
}

// parentDir returns the directory component of path.
func parentDir(path string) string {
	for i := len(path) - 1; i > 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "/"
}

// OpClass describes how an operation spreads over groups.
type OpClass uint8

// Operation classes.
const (
	// ClassLocal runs entirely inside one group.
	ClassLocal OpClass = iota
	// ClassPair is a two-group distributed transaction.
	ClassPair
	// ClassGlobal must run in every group (directory skeleton updates).
	ClassGlobal
)

// CreatePlan: create(path) is local to the file's home group.
func (p *Partitioner) CreatePlan(path string) (OpClass, []int) {
	return ClassLocal, []int{p.HomeGroup(path)}
}

// StatPlan: getfileinfo(path) is local to the file's home group.
func (p *Partitioner) StatPlan(path string) (OpClass, []int) {
	return ClassLocal, []int{p.HomeGroup(path)}
}

// MkdirPlan: directory creation updates the replicated skeleton in every
// group; the dir-master group coordinates.
func (p *Partitioner) MkdirPlan(path string) (OpClass, []int) {
	if p.groups == 1 {
		return ClassLocal, []int{0}
	}
	return ClassGlobal, p.allGroupsLeadBy(p.DirMasterGroup(path))
}

// DeletePlan: file deletion touches the home group and the dir-master
// group (parent-directory bookkeeping) — a two-phase commit when they
// differ.
func (p *Partitioner) DeletePlan(path string) (OpClass, []int) {
	home, master := p.HomeGroup(path), p.DirMasterGroup(path)
	if home == master || p.groups == 1 {
		return ClassLocal, []int{home}
	}
	return ClassPair, []int{home, master}
}

// RenamePlan: rename moves a file between home groups and updates both
// parent directories; when any differ it is a distributed transaction led
// by the source home group.
func (p *Partitioner) RenamePlan(src, dst string) (OpClass, []int) {
	groups := dedup([]int{
		p.HomeGroup(src), p.HomeGroup(dst),
		p.DirMasterGroup(src), p.DirMasterGroup(dst),
	})
	if len(groups) == 1 {
		return ClassLocal, groups
	}
	return ClassPair, groups
}

// allGroupsLeadBy lists every group with lead first.
func (p *Partitioner) allGroupsLeadBy(lead int) []int {
	out := make([]int, 0, p.groups)
	out = append(out, lead)
	for g := 0; g < p.groups; g++ {
		if g != lead {
			out = append(out, g)
		}
	}
	return out
}

func dedup(in []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
