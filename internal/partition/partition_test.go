package partition

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestHomeGroupStableAndInRange(t *testing.T) {
	p := New(3)
	for i := 0; i < 1000; i++ {
		path := fmt.Sprintf("/dir%d/file%d", i%7, i)
		g := p.HomeGroup(path)
		if g < 0 || g >= 3 {
			t.Fatalf("group %d out of range", g)
		}
		if g != p.HomeGroup(path) {
			t.Fatal("hash not stable")
		}
	}
}

func TestHomeGroupSpreads(t *testing.T) {
	p := New(4)
	counts := make([]int, 4)
	for i := 0; i < 10000; i++ {
		counts[p.HomeGroup(fmt.Sprintf("/bench/f%06d", i))]++
	}
	for g, c := range counts {
		if c < 1800 || c > 3200 {
			t.Fatalf("group %d got %d/10000 files — badly skewed", g, c)
		}
	}
}

func TestSingleGroupAlwaysLocal(t *testing.T) {
	p := New(1)
	for _, path := range []string{"/a", "/a/b/c", "/x/y"} {
		if cls, gs := p.MkdirPlan(path); cls != ClassLocal || len(gs) != 1 || gs[0] != 0 {
			t.Fatalf("mkdir plan = %v %v", cls, gs)
		}
		if cls, gs := p.DeletePlan(path); cls != ClassLocal || gs[0] != 0 {
			t.Fatalf("delete plan = %v %v", cls, gs)
		}
		if cls, gs := p.RenamePlan(path, path+"x"); cls != ClassLocal || gs[0] != 0 {
			t.Fatalf("rename plan = %v %v", cls, gs)
		}
	}
}

func TestCreateAndStatAreLocal(t *testing.T) {
	p := New(5)
	cls, gs := p.CreatePlan("/d/f")
	if cls != ClassLocal || len(gs) != 1 {
		t.Fatalf("create plan = %v %v", cls, gs)
	}
	cls2, gs2 := p.StatPlan("/d/f")
	if cls2 != ClassLocal || gs2[0] != gs[0] {
		t.Fatal("stat must target the file's home group")
	}
}

func TestMkdirIsGlobal(t *testing.T) {
	p := New(3)
	cls, gs := p.MkdirPlan("/newdir")
	if cls != ClassGlobal {
		t.Fatalf("class = %v", cls)
	}
	if len(gs) != 3 {
		t.Fatalf("groups = %v", gs)
	}
	if gs[0] != p.DirMasterGroup("/newdir") {
		t.Fatal("dir master must lead")
	}
	seen := map[int]bool{}
	for _, g := range gs {
		if seen[g] {
			t.Fatalf("duplicate group in %v", gs)
		}
		seen[g] = true
	}
}

func TestDeletePlanPairOrLocal(t *testing.T) {
	p := New(4)
	pairSeen, localSeen := false, false
	for i := 0; i < 200; i++ {
		path := fmt.Sprintf("/dir%d/f%d", i, i)
		cls, gs := p.DeletePlan(path)
		switch cls {
		case ClassLocal:
			localSeen = true
			if len(gs) != 1 {
				t.Fatalf("local plan with %d groups", len(gs))
			}
		case ClassPair:
			pairSeen = true
			if len(gs) != 2 || gs[0] == gs[1] {
				t.Fatalf("pair plan = %v", gs)
			}
			if gs[0] != p.HomeGroup(path) {
				t.Fatal("home group must coordinate deletes")
			}
		default:
			t.Fatalf("unexpected class %v", cls)
		}
	}
	if !pairSeen || !localSeen {
		t.Fatalf("expected a mix of plans: pair=%v local=%v", pairSeen, localSeen)
	}
}

func TestRenamePlanIncludesAllInvolvedGroups(t *testing.T) {
	p := New(4)
	src, dst := "/a/src", "/b/dst"
	_, gs := p.RenamePlan(src, dst)
	want := map[int]bool{
		p.HomeGroup(src): true, p.HomeGroup(dst): true,
		p.DirMasterGroup(src): true, p.DirMasterGroup(dst): true,
	}
	got := map[int]bool{}
	for _, g := range gs {
		got[g] = true
	}
	for g := range want {
		if !got[g] {
			t.Fatalf("missing group %d in %v", g, gs)
		}
	}
	if gs[0] != p.HomeGroup(src) {
		t.Fatal("source home group must lead renames")
	}
}

func TestDirMasterSharedBySiblings(t *testing.T) {
	p := New(8)
	a, b := p.DirMasterGroup("/data/x"), p.DirMasterGroup("/data/y")
	if a != b {
		t.Fatal("siblings must share a dir master")
	}
	if p.DirMasterGroup("/top") != p.DirMasterGroup("/other") {
		t.Fatal("root children must share the root dir master")
	}
}

func TestPanicOnZeroGroups(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0)
}

func TestPropertyPlansWellFormed(t *testing.T) {
	f := func(nRaw uint8, a, b string) bool {
		n := int(nRaw%8) + 1
		p := New(n)
		src := "/" + sanitize(a)
		dst := "/" + sanitize(b)
		for _, plan := range [][]int{
			second(p.CreatePlan(src)), second(p.MkdirPlan(src)),
			second(p.DeletePlan(src)), second(p.RenamePlan(src, dst)),
		} {
			if len(plan) == 0 {
				return false
			}
			seen := map[int]bool{}
			for _, g := range plan {
				if g < 0 || g >= n || seen[g] {
					return false
				}
				seen[g] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func second(_ OpClass, gs []int) []int { return gs }

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r != '/' && r != 0 {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return "x"
	}
	return string(out)
}

func TestSubtreeStrategyPinsDirectories(t *testing.T) {
	p := NewWithStrategy(4, BySubtree)
	base := p.HomeGroup("/data/a")
	for i := 0; i < 100; i++ {
		if p.HomeGroup(fmt.Sprintf("/data/file-%d", i)) != base {
			t.Fatal("subtree strategy scattered a subtree")
		}
		if p.HomeGroup(fmt.Sprintf("/data/deep/nest/f%d", i)) != base {
			t.Fatal("nested paths left the subtree's group")
		}
	}
	// Different top-level trees still spread.
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		seen[p.HomeGroup(fmt.Sprintf("/tree%02d/f", i))] = true
	}
	if len(seen) < 3 {
		t.Fatalf("subtrees landed on only %d groups", len(seen))
	}
}

func TestByPathSpreadsWithinDirectory(t *testing.T) {
	p := New(4)
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		seen[p.HomeGroup(fmt.Sprintf("/hot/f%02d", i))] = true
	}
	if len(seen) != 4 {
		t.Fatalf("full-path hash used only %d groups for one directory", len(seen))
	}
}
