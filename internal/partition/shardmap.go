package partition

import (
	"encoding/json"
	"fmt"
	"sort"
)

// DefaultSlotsPerGroup sets the migration granularity: each group initially
// owns this many slots, so one move rebalances 1/(groups*8) of the file
// namespace. Eight is enough to isolate a hotspot (move every cold slot off
// a hot group) while keeping the map dense and cheap at 512 groups (4096
// slots = one 16 KiB array).
const DefaultSlotsPerGroup = 8

// Map is an epoch-versioned assignment of hash slots to replica groups.
// Maps are immutable once built: every mutation (Move, SplitGroup,
// MergeGroup) returns a fresh Map with the epoch bumped, so a pointer can
// be shared freely between simulated nodes — exactly what OpReply does when
// a server hands its map snapshot to a stale client.
//
// The initial assignment is slot i → group i%groups with groups*slotsPerGroup
// slots. Because the slot count is a multiple of the group count, the
// composite route hash(path) % slots % groups equals hash(path) % groups:
// a freshly built map reproduces the paper's static hash partitioning
// bit-for-bit, and only live migration makes them diverge.
type Map struct {
	epoch  uint64
	groups int
	assign []int32 // slot → owning group
}

// NewMap builds the epoch-0 uniform map.
func NewMap(groups, slotsPerGroup int) *Map {
	if groups < 1 {
		panic("partition: need at least one group")
	}
	if slotsPerGroup < 1 {
		slotsPerGroup = DefaultSlotsPerGroup
	}
	assign := make([]int32, groups*slotsPerGroup)
	for i := range assign {
		assign[i] = int32(i % groups)
	}
	return &Map{epoch: 0, groups: groups, assign: assign}
}

// Epoch returns the map version; higher epochs supersede lower ones.
func (m *Map) Epoch() uint64 { return m.epoch }

// Slots returns the slot count (fixed for a deployment's lifetime).
func (m *Map) Slots() int { return len(m.assign) }

// Groups returns the group count.
func (m *Map) Groups() int { return m.groups }

// Group returns the group owning slot.
func (m *Map) Group(slot int) int { return int(m.assign[slot]) }

// SlotsOf lists the slots currently assigned to group g, ascending.
func (m *Map) SlotsOf(g int) []int {
	var out []int
	for s, grp := range m.assign {
		if int(grp) == g {
			out = append(out, s)
		}
	}
	return out
}

// Counts returns the number of slots owned by each group.
func (m *Map) Counts() []int {
	out := make([]int, m.groups)
	for _, g := range m.assign {
		out[g]++
	}
	return out
}

// Move reassigns slot to group to, returning a new map at epoch+1.
// Moving a slot to its current owner still bumps the epoch (callers use
// Move as the commit point of a migration and need the fence regardless).
func (m *Map) Move(slot, to int) (*Map, error) {
	if slot < 0 || slot >= len(m.assign) {
		return nil, fmt.Errorf("partition: slot %d out of range [0,%d)", slot, len(m.assign))
	}
	if to < 0 || to >= m.groups {
		return nil, fmt.Errorf("partition: group %d out of range [0,%d)", to, m.groups)
	}
	n := m.clone()
	n.assign[slot] = int32(to)
	return n, nil
}

// SplitGroup moves the upper half of g's slots to group to, returning a new
// map at epoch+1. It is the coarse "shed half my load" operation.
func (m *Map) SplitGroup(g, to int) (*Map, error) {
	if to < 0 || to >= m.groups {
		return nil, fmt.Errorf("partition: group %d out of range [0,%d)", to, m.groups)
	}
	slots := m.SlotsOf(g)
	if len(slots) < 2 {
		return nil, fmt.Errorf("partition: group %d owns %d slots, cannot split", g, len(slots))
	}
	n := m.clone()
	for _, s := range slots[len(slots)/2:] {
		n.assign[s] = int32(to)
	}
	return n, nil
}

// MergeGroup moves every slot owned by from onto to, returning a new map at
// epoch+1. from keeps existing as a group (it can receive slots again); it
// just serves no file entries until one is moved back.
func (m *Map) MergeGroup(from, to int) (*Map, error) {
	if from == to {
		return nil, fmt.Errorf("partition: merge %d onto itself", from)
	}
	if to < 0 || to >= m.groups || from < 0 || from >= m.groups {
		return nil, fmt.Errorf("partition: merge %d→%d out of range [0,%d)", from, to, m.groups)
	}
	n := m.clone()
	for s, g := range n.assign {
		if int(g) == from {
			n.assign[s] = int32(to)
		}
	}
	return n, nil
}

// clone copies the map with the epoch bumped.
func (m *Map) clone() *Map {
	assign := make([]int32, len(m.assign))
	copy(assign, m.assign)
	return &Map{epoch: m.epoch + 1, groups: m.groups, assign: assign}
}

// mapWire is the JSON shape stored in the coordination-service znode.
type mapWire struct {
	Epoch  uint64  `json:"epoch"`
	Groups int     `json:"groups"`
	Assign []int32 `json:"assign"`
}

// Encode serializes the map for a znode payload.
func (m *Map) Encode() []byte {
	b, err := json.Marshal(mapWire{Epoch: m.epoch, Groups: m.groups, Assign: m.assign})
	if err != nil {
		panic("partition: encode map: " + err.Error())
	}
	return b
}

// DecodeMap parses an Encode payload.
func DecodeMap(data []byte) (*Map, error) {
	var w mapWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, err
	}
	if w.Groups < 1 || len(w.Assign) < w.Groups {
		return nil, fmt.Errorf("partition: malformed map (groups=%d slots=%d)", w.Groups, len(w.Assign))
	}
	for _, g := range w.Assign {
		if g < 0 || int(g) >= w.Groups {
			return nil, fmt.Errorf("partition: slot assigned to out-of-range group %d", g)
		}
	}
	return &Map{epoch: w.Epoch, groups: w.Groups, assign: w.Assign}, nil
}

// Diff lists the slots whose owner differs between m and other (same-shape
// maps only), ascending. Servers use it to find slots to purge or adopt
// when installing a newer map.
func (m *Map) Diff(other *Map) []int {
	if other == nil || len(other.assign) != len(m.assign) {
		return nil
	}
	var out []int
	for s := range m.assign {
		if m.assign[s] != other.assign[s] {
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}
