package partition

// GobEncode implements gob.GobEncoder by delegating to the canonical wire
// encoding (the same bytes stored in the /mams/shardmap znode), so a *Map
// riding inside an OpReply survives the real transport's gob framing even
// though its fields are unexported.
func (m *Map) GobEncode() ([]byte, error) { return m.Encode(), nil }

// GobDecode implements gob.GobDecoder.
func (m *Map) GobDecode(data []byte) error {
	dec, err := DecodeMap(data)
	if err != nil {
		return err
	}
	*m = *dec
	return nil
}
