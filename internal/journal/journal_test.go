package journal

import (
	"errors"
	"testing"
	"testing/quick"
)

func rec(op OpKind, path string) Record {
	return Record{Op: op, Path: path, Perm: 0o755, MTime: 12345}
}

func TestBatchEncodeDecodeRoundTrip(t *testing.T) {
	b := Batch{
		SN: 7, Epoch: 3, FirstTx: 100,
		Records: []Record{
			{TxID: 100, Op: OpCreate, Path: "/a/b", Size: 1 << 30, Perm: 0o644, MTime: -5},
			{TxID: 101, Op: OpRename, Path: "/a/b", Dest: "/c/d", MTime: 9},
			{TxID: 102, Op: OpDelete, Path: "/c/d"},
		},
	}
	got, err := DecodeBatch(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.SN != 7 || got.Epoch != 3 || got.FirstTx != 100 || len(got.Records) != 3 {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range b.Records {
		if got.Records[i] != b.Records[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got.Records[i], b.Records[i])
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	b := Batch{SN: 1, Epoch: 1, FirstTx: 1, Records: []Record{rec(OpCreate, "/x")}}
	enc := b.Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeBatch(enc[:cut]); err == nil {
			t.Fatalf("cut=%d decoded successfully", cut)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	b := Batch{SN: 1, Epoch: 1, FirstTx: 1}
	enc := append(b.Encode(), 0xFF)
	if _, err := DecodeBatch(enc); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestBatchLastTx(t *testing.T) {
	b := Batch{FirstTx: 10, Records: []Record{{TxID: 10}, {TxID: 11}}}
	if b.LastTx() != 11 {
		t.Fatalf("LastTx = %d", b.LastTx())
	}
	empty := Batch{FirstTx: 10}
	if empty.LastTx() != 9 {
		t.Fatalf("empty LastTx = %d", empty.LastTx())
	}
}

func TestLogAppendSequence(t *testing.T) {
	l := NewLog()
	for sn := uint64(1); sn <= 5; sn++ {
		if err := l.Append(Batch{SN: sn, Epoch: 1}); err != nil {
			t.Fatalf("sn %d: %v", sn, err)
		}
	}
	if l.LastSN() != 5 || l.Len() != 5 {
		t.Fatalf("LastSN=%d Len=%d", l.LastSN(), l.Len())
	}
}

func TestLogRejectsDuplicate(t *testing.T) {
	l := NewLog()
	_ = l.Append(Batch{SN: 1, Epoch: 1})
	if err := l.Append(Batch{SN: 1, Epoch: 1}); !errors.Is(err, ErrStale) {
		t.Fatalf("duplicate err = %v", err)
	}
}

func TestLogRejectsOldEpoch(t *testing.T) {
	l := NewLog()
	_ = l.Append(Batch{SN: 1, Epoch: 5})
	if err := l.Append(Batch{SN: 2, Epoch: 4}); !errors.Is(err, ErrStale) {
		t.Fatalf("old epoch err = %v", err)
	}
	// Same epoch continues fine.
	if err := l.Append(Batch{SN: 2, Epoch: 5}); err != nil {
		t.Fatalf("same epoch: %v", err)
	}
}

func TestLogDetectsGap(t *testing.T) {
	l := NewLog()
	_ = l.Append(Batch{SN: 1, Epoch: 1})
	if err := l.Append(Batch{SN: 3, Epoch: 1}); !errors.Is(err, ErrGap) {
		t.Fatalf("gap err = %v", err)
	}
	// The gap must not corrupt state.
	if l.LastSN() != 1 {
		t.Fatalf("LastSN after gap = %d", l.LastSN())
	}
}

func TestLogSince(t *testing.T) {
	l := NewLog()
	for sn := uint64(1); sn <= 10; sn++ {
		_ = l.Append(Batch{SN: sn, Epoch: 1})
	}
	out := l.Since(7)
	if len(out) != 3 || out[0].SN != 8 || out[2].SN != 10 {
		t.Fatalf("Since(7) = %+v", out)
	}
	if got := l.Since(10); got != nil {
		t.Fatalf("Since(10) = %+v", got)
	}
}

func TestLogGet(t *testing.T) {
	l := NewLog()
	for sn := uint64(1); sn <= 5; sn++ {
		_ = l.Append(Batch{SN: sn, Epoch: 1})
	}
	b, ok := l.Get(3)
	if !ok || b.SN != 3 {
		t.Fatalf("Get(3) = %+v %v", b, ok)
	}
	if _, ok := l.Get(9); ok {
		t.Fatal("Get(9) should miss")
	}
	if _, ok := l.Get(0); ok {
		t.Fatal("Get(0) should miss")
	}
}

func TestLogTruncateThrough(t *testing.T) {
	l := NewLog()
	for sn := uint64(1); sn <= 10; sn++ {
		_ = l.Append(Batch{SN: sn, Epoch: 1, Records: []Record{rec(OpCreate, "/f")}})
	}
	before := l.Bytes()
	l.TruncateThrough(6)
	if l.Len() != 4 {
		t.Fatalf("Len after truncate = %d", l.Len())
	}
	if l.Bytes() >= before {
		t.Fatalf("Bytes did not shrink: %d -> %d", before, l.Bytes())
	}
	if _, ok := l.Get(6); ok {
		t.Fatal("truncated batch still retrievable")
	}
	if b, ok := l.Get(7); !ok || b.SN != 7 {
		t.Fatal("retained batch lost after truncate")
	}
	// Appends continue at the old sequence.
	if err := l.Append(Batch{SN: 11, Epoch: 1}); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
}

func TestLogTruncateAllThenAppend(t *testing.T) {
	l := NewLog()
	for sn := uint64(1); sn <= 3; sn++ {
		_ = l.Append(Batch{SN: sn, Epoch: 1})
	}
	l.TruncateThrough(3)
	if l.Len() != 0 {
		t.Fatalf("Len = %d", l.Len())
	}
	if err := l.Append(Batch{SN: 4, Epoch: 1}); err != nil {
		t.Fatalf("append after full truncate: %v", err)
	}
	if b, ok := l.Get(4); !ok || b.SN != 4 {
		t.Fatal("Get(4) after full truncate failed")
	}
}

func TestLogResetTo(t *testing.T) {
	l := NewLog()
	_ = l.Append(Batch{SN: 1, Epoch: 1})
	l.ResetTo(41, 7)
	if l.LastSN() != 41 || l.Epoch() != 7 || l.Len() != 0 {
		t.Fatalf("state after ResetTo: sn=%d epoch=%d len=%d", l.LastSN(), l.Epoch(), l.Len())
	}
	if err := l.Append(Batch{SN: 42, Epoch: 7}); err != nil {
		t.Fatalf("append after ResetTo: %v", err)
	}
}

func TestLogReset(t *testing.T) {
	l := NewLog()
	_ = l.Append(Batch{SN: 1, Epoch: 3})
	l.Reset()
	if l.LastSN() != 0 || l.Epoch() != 0 || l.Bytes() != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestBuilderAssignsContiguousTxAndSN(t *testing.T) {
	bd := NewBuilder(2, 10, 100)
	if tx := bd.Add(rec(OpCreate, "/a")); tx != 101 {
		t.Fatalf("first tx = %d", tx)
	}
	if tx := bd.Add(rec(OpMkdir, "/d")); tx != 102 {
		t.Fatalf("second tx = %d", tx)
	}
	b := bd.Seal()
	if b.SN != 11 || b.Epoch != 2 || b.FirstTx != 101 || b.LastTx() != 102 {
		t.Fatalf("sealed batch = %+v", b)
	}
	bd.Add(rec(OpDelete, "/a"))
	b2 := bd.Seal()
	if b2.SN != 12 || b2.FirstTx != 103 {
		t.Fatalf("second batch = %+v", b2)
	}
}

func TestBuilderPendingCount(t *testing.T) {
	bd := NewBuilder(1, 0, 0)
	if bd.Pending() != 0 {
		t.Fatal("fresh builder has pending records")
	}
	bd.Add(rec(OpCreate, "/x"))
	if bd.Pending() != 1 {
		t.Fatalf("Pending = %d", bd.Pending())
	}
	bd.Seal()
	if bd.Pending() != 0 {
		t.Fatal("Seal did not clear pending")
	}
}

func TestBuilderFeedsLogCleanly(t *testing.T) {
	bd := NewBuilder(1, 0, 0)
	l := NewLog()
	for i := 0; i < 20; i++ {
		bd.Add(rec(OpCreate, "/f"))
		if i%3 == 0 {
			if err := l.Append(bd.Seal()); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
	}
	if l.LastSN() == 0 {
		t.Fatal("no batches committed")
	}
}

func TestOpKindString(t *testing.T) {
	cases := map[OpKind]string{
		OpNoop: "noop", OpCreate: "create", OpMkdir: "mkdir",
		OpDelete: "delete", OpRename: "rename", OpKind(99): "op(99)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

func TestPropertyEncodeDecode(t *testing.T) {
	f := func(sn, epoch, tx uint64, path, dest string, size int64, perm uint16) bool {
		b := Batch{SN: sn, Epoch: epoch, FirstTx: tx,
			Records: []Record{{TxID: tx, Op: OpRename, Path: path, Dest: dest, Size: size, Perm: perm}}}
		got, err := DecodeBatch(b.Encode())
		if err != nil {
			return false
		}
		return got.SN == sn && got.Epoch == epoch && got.Records[0].Path == path &&
			got.Records[0].Dest == dest && got.Records[0].Size == size && got.Records[0].Perm == perm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLogMonotone(t *testing.T) {
	// Whatever mix of valid/stale/gapped appends arrive, LastSN never
	// decreases and accepted batches are exactly the contiguous prefix.
	f := func(sns []uint64) bool {
		l := NewLog()
		var accepted uint64
		for _, raw := range sns {
			sn := raw%8 + 1 // small range to provoke collisions
			err := l.Append(Batch{SN: sn, Epoch: 1})
			if err == nil {
				if sn != accepted+1 {
					return false
				}
				accepted = sn
			}
			if l.LastSN() != accepted {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
