// Package journal defines the metadata edit log shared between an active
// metadata server, its standbys and the shared storage pool (SSP).
//
// Following the paper (§III.A), the active aggregates metadata modifications
// into batches before writing them back asynchronously. Each batch carries a
// monotonically increasing serial number sn and the first transaction id it
// contains — the paper's <sn, transactionid> pair — plus the active's
// election epoch, which implements the duplicate/stale-journal filtering of
// failover step 4 (Fig. 4) and IO fencing.
package journal

import (
	"errors"
	"fmt"

	"mams/internal/wire"
)

// OpKind identifies a namespace mutation.
type OpKind uint8

// The metadata operations evaluated in the paper.
const (
	OpNoop OpKind = iota
	OpCreate
	OpMkdir
	OpDelete
	OpRename
)

func (k OpKind) String() string {
	switch k {
	case OpNoop:
		return "noop"
	case OpCreate:
		return "create"
	case OpMkdir:
		return "mkdir"
	case OpDelete:
		return "delete"
	case OpRename:
		return "rename"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Record is a single logged mutation.
type Record struct {
	TxID  uint64
	Op    OpKind
	Path  string
	Dest  string // rename destination; empty otherwise
	Size  int64  // file size at create; 0 otherwise
	Perm  uint16
	MTime int64 // virtual-time nanoseconds
}

// Batch is the unit of journal synchronization: a sealed group of records
// identified by (SN, FirstTx) and fenced by the writer's epoch.
type Batch struct {
	SN      uint64
	Epoch   uint64
	FirstTx uint64
	Records []Record
}

// LastTx returns the highest transaction id in the batch, or FirstTx-1 for
// an empty batch.
func (b *Batch) LastTx() uint64 {
	if len(b.Records) == 0 {
		return b.FirstTx - 1
	}
	return b.Records[len(b.Records)-1].TxID
}

// Encode serializes the batch.
func (b *Batch) Encode() []byte {
	w := wire.NewWriter(64 + 48*len(b.Records))
	w.Uvarint(b.SN)
	w.Uvarint(b.Epoch)
	w.Uvarint(b.FirstTx)
	w.Uvarint(uint64(len(b.Records)))
	for _, r := range b.Records {
		w.Uvarint(r.TxID)
		w.U8(uint8(r.Op))
		w.String(r.Path)
		w.String(r.Dest)
		w.Varint(r.Size)
		w.U16(r.Perm)
		w.Varint(r.MTime)
	}
	return w.Bytes()
}

// DecodeBatch parses a batch produced by Encode.
func DecodeBatch(buf []byte) (Batch, error) {
	r := wire.NewReader(buf)
	var b Batch
	b.SN = r.Uvarint()
	b.Epoch = r.Uvarint()
	b.FirstTx = r.Uvarint()
	n := r.Uvarint()
	if r.Err() != nil {
		return Batch{}, r.Err()
	}
	if n > uint64(len(buf)) { // each record needs >= 1 byte
		return Batch{}, fmt.Errorf("journal: implausible record count %d", n)
	}
	b.Records = make([]Record, 0, n)
	for i := uint64(0); i < n; i++ {
		var rec Record
		rec.TxID = r.Uvarint()
		rec.Op = OpKind(r.U8())
		rec.Path = r.String()
		rec.Dest = r.String()
		rec.Size = r.Varint()
		rec.Perm = r.U16()
		rec.MTime = r.Varint()
		b.Records = append(b.Records, rec)
	}
	if err := r.Finish(); err != nil {
		return Batch{}, err
	}
	return b, nil
}

// Journal errors.
var (
	// ErrGap reports an append whose SN is not exactly lastSN+1.
	ErrGap = errors.New("journal: sn gap")
	// ErrStale reports a batch from an older epoch or with an already-seen
	// SN; per Fig. 4 step 4 such batches are ignored, not applied twice.
	ErrStale = errors.New("journal: stale or duplicate batch")
)

// Log is an ordered sequence of batches held by one server (or the SSP).
// It enforces the paper's commit rule: a batch is accepted only when its SN
// is exactly lastSN+1 and its epoch is not older than the highest seen.
type Log struct {
	batches []Batch
	baseSN  uint64 // SN of batches[0]; logs may be truncated at a checkpoint
	lastSN  uint64
	epoch   uint64
	bytes   int64
}

// NewLog returns an empty log whose next expected SN is 1.
func NewLog() *Log { return &Log{} }

// LastSN returns the highest committed serial number (0 if empty).
func (l *Log) LastSN() uint64 { return l.lastSN }

// Epoch returns the highest writer epoch observed.
func (l *Log) Epoch() uint64 { return l.epoch }

// Bytes returns the total encoded size of retained batches.
func (l *Log) Bytes() int64 { return l.bytes }

// Len returns the number of retained batches.
func (l *Log) Len() int { return len(l.batches) }

// Append commits the batch if it is the next in sequence.
//
// Returns ErrStale for duplicates/old epochs (caller ignores them: that is
// how re-flushed journals after failover are deduplicated) and ErrGap when
// the server has missed batches and must be demoted to junior for renewing.
func (l *Log) Append(b Batch) error {
	if b.Epoch < l.epoch {
		return ErrStale
	}
	if b.SN <= l.lastSN {
		return ErrStale
	}
	if b.SN != l.lastSN+1 {
		return ErrGap
	}
	if len(l.batches) == 0 {
		l.baseSN = b.SN
	}
	l.batches = append(l.batches, b)
	l.lastSN = b.SN
	if b.Epoch > l.epoch {
		l.epoch = b.Epoch
	}
	l.bytes += int64(len(b.Encode()))
	return nil
}

// Since returns all retained batches with SN > sn, in order.
func (l *Log) Since(sn uint64) []Batch {
	var out []Batch
	for _, b := range l.batches {
		if b.SN > sn {
			out = append(out, b)
		}
	}
	return out
}

// Get returns the batch with the given SN, if retained.
func (l *Log) Get(sn uint64) (Batch, bool) {
	if sn < l.baseSN || sn > l.lastSN || len(l.batches) == 0 {
		return Batch{}, false
	}
	b := l.batches[sn-l.baseSN]
	if b.SN != sn {
		return Batch{}, false
	}
	return b, true
}

// TruncateThrough drops batches with SN <= sn (after a checkpoint image has
// made them redundant). The next expected SN is unchanged.
func (l *Log) TruncateThrough(sn uint64) {
	i := 0
	for i < len(l.batches) && l.batches[i].SN <= sn {
		l.bytes -= int64(len(l.batches[i].Encode()))
		i++
	}
	l.batches = append([]Batch(nil), l.batches[i:]...)
	if len(l.batches) > 0 {
		l.baseSN = l.batches[0].SN
	} else {
		l.baseSN = 0
	}
}

// Reset discards all state (a junior restarting from scratch).
func (l *Log) Reset() {
	*l = Log{}
}

// ResetTo discards state and primes the log so the next accepted SN is
// sn+1 — used after a junior loads a checkpoint image taken at sn.
func (l *Log) ResetTo(sn, epoch uint64) {
	*l = Log{lastSN: sn, epoch: epoch}
}

// Builder assigns serial numbers and transaction ids on the active server
// and aggregates records into batches (the paper's asynchronous write-back
// aggregation).
type Builder struct {
	epoch   uint64
	nextSN  uint64
	nextTx  uint64
	pending []Record
}

// NewBuilder starts numbering after the given committed position.
func NewBuilder(epoch, lastSN, lastTx uint64) *Builder {
	return &Builder{epoch: epoch, nextSN: lastSN + 1, nextTx: lastTx + 1}
}

// Epoch returns the builder's writer epoch.
func (bd *Builder) Epoch() uint64 { return bd.epoch }

// Pending returns the number of records not yet sealed.
func (bd *Builder) Pending() int { return len(bd.pending) }

// Add appends a record, assigning it the next transaction id, and returns
// the assigned id.
func (bd *Builder) Add(rec Record) uint64 {
	rec.TxID = bd.nextTx
	bd.nextTx++
	bd.pending = append(bd.pending, rec)
	return rec.TxID
}

// Seal closes the pending records into a batch with the next SN. Sealing
// with no pending records returns an empty batch (still SN-numbered), which
// callers normally avoid.
func (bd *Builder) Seal() Batch {
	b := Batch{
		SN:      bd.nextSN,
		Epoch:   bd.epoch,
		FirstTx: bd.nextTx - uint64(len(bd.pending)),
		Records: bd.pending,
	}
	bd.nextSN++
	bd.pending = nil
	return b
}
