package journal

import (
	"fmt"
	"testing"
)

func benchBatch(records int) Batch {
	bd := NewBuilder(1, 0, 0)
	for i := 0; i < records; i++ {
		bd.Add(Record{
			Op: OpCreate, Path: fmt.Sprintf("/bench/d%03d/f%08d", i%16, i),
			Size: 4 << 20, Perm: 0o644, MTime: 123456789,
		})
	}
	return bd.Seal()
}

func BenchmarkBatchEncode(b *testing.B) {
	batch := benchBatch(64)
	enc := (&batch).Encode()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = (&batch).Encode()
	}
}

func BenchmarkBatchDecode(b *testing.B) {
	batch := benchBatch(64)
	enc := (&batch).Encode()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatch(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogAppend(b *testing.B) {
	l := NewLog()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(Batch{SN: uint64(i + 1), Epoch: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuilderAddSeal(b *testing.B) {
	bd := NewBuilder(1, 0, 0)
	rec := Record{Op: OpCreate, Path: "/bench/f", Size: 1024, Perm: 0o644}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd.Add(rec)
		if i%64 == 63 {
			bd.Seal()
		}
	}
}

func BenchmarkLogSince(b *testing.B) {
	l := NewLog()
	for sn := uint64(1); sn <= 10000; sn++ {
		_ = l.Append(Batch{SN: sn, Epoch: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := l.Since(9900); len(got) != 100 {
			b.Fatal("wrong tail")
		}
	}
}
