package workload_test

import (
	"mams/internal/fsclient"
	"testing"

	"mams/internal/cluster"
	"mams/internal/mams"
	"mams/internal/metrics"
	"mams/internal/sim"
	"mams/internal/workload"
)

func buildSys(t *testing.T, seed uint64) (*cluster.Env, cluster.System) {
	t.Helper()
	env := cluster.NewEnv(seed)
	sys := cluster.BuildHDFS(env, cluster.BaselineSpec{})
	if !sys.AwaitReady(10 * sim.Second) {
		t.Fatal("not ready")
	}
	return env, sys
}

func TestSetupCreatesDirectories(t *testing.T) {
	env, sys := buildSys(t, 61)
	drv := workload.NewDriver(env, sys, 2, nil)
	drv.Setup(5)
	// Creating files under every directory must succeed.
	elapsed := drv.RunOps(mams.OpCreate, 50, 4)
	if elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if drv.Failed() != 0 {
		t.Fatalf("%d setup-dependent creates failed", drv.Failed())
	}
}

func TestRunOpsCompletesExactly(t *testing.T) {
	env, sys := buildSys(t, 62)
	drv := workload.NewDriver(env, sys, 2, nil)
	drv.Setup(2)
	drv.RunOps(mams.OpCreate, 123, 8)
	if drv.Completed() != 123 {
		t.Fatalf("completed = %d", drv.Completed())
	}
	if drv.Pool() != 123 {
		t.Fatalf("pool = %d", drv.Pool())
	}
}

func TestPreloadPopulatesPool(t *testing.T) {
	env, sys := buildSys(t, 63)
	drv := workload.NewDriver(env, sys, 2, nil)
	drv.Setup(2)
	drv.Preload(200, 8)
	if drv.Pool() != 200 {
		t.Fatalf("pool = %d", drv.Pool())
	}
	// Deletes consume the pool.
	drv.RunOps(mams.OpDelete, 50, 4)
	if drv.Pool() != 150 {
		t.Fatalf("pool after deletes = %d", drv.Pool())
	}
	if drv.Failed() != 0 {
		t.Fatalf("failed = %d", drv.Failed())
	}
}

func TestRenameKeepsPoolConsistent(t *testing.T) {
	env, sys := buildSys(t, 64)
	drv := workload.NewDriver(env, sys, 2, nil)
	drv.Setup(2)
	drv.Preload(100, 8)
	drv.RunOps(mams.OpRename, 100, 4)
	if drv.Failed() != 0 {
		t.Fatalf("failed = %d (pool path bookkeeping broken?)", drv.Failed())
	}
	// Stats against the (renamed) pool still work.
	drv.RunOps(mams.OpStat, 100, 4)
	if drv.Failed() != 0 {
		t.Fatalf("stat after rename failed = %d", drv.Failed())
	}
}

func TestMixedRunRespectsWeights(t *testing.T) {
	env, sys := buildSys(t, 65)
	col := &metrics.Collector{}
	drv := workload.NewDriver(env, sys, 4, col.Observe)
	drv.Setup(4)
	drv.Preload(100, 8)
	n := 2000
	drv.RunMix(workload.MixedPaper(), n, 16)
	counts := map[mams.OpKind]int{}
	for _, r := range col.Results {
		counts[r.Kind]++
	}
	// 40/40/20 within generous tolerance.
	frac := func(k mams.OpKind) float64 { return float64(counts[k]) / float64(n) }
	if f := frac(mams.OpCreate); f < 0.3 || f > 0.5 {
		t.Fatalf("create fraction = %.2f", f)
	}
	if f := frac(mams.OpStat); f < 0.3 || f > 0.5 {
		t.Fatalf("stat fraction = %.2f", f)
	}
	if f := frac(mams.OpMkdir); f < 0.12 || f > 0.28 {
		t.Fatalf("mkdir fraction = %.2f", f)
	}
}

func TestContinuousStops(t *testing.T) {
	env, sys := buildSys(t, 66)
	drv := workload.NewDriver(env, sys, 2, nil)
	drv.Setup(2)
	stop := drv.Continuous(workload.CreateMkdir(), 4)
	env.RunFor(2 * sim.Second)
	stop()
	env.RunFor(sim.Second)
	after := drv.Completed()
	env.RunFor(2 * sim.Second)
	if drv.Completed() != after {
		t.Fatalf("ops continued after stop: %d -> %d", after, drv.Completed())
	}
	if after == 0 {
		t.Fatal("continuous produced nothing")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int, sim.Time) {
		env, sys := buildSys(t, 67)
		drv := workload.NewDriver(env, sys, 2, nil)
		drv.Setup(2)
		elapsed := drv.RunOps(mams.OpCreate, 500, 8)
		return drv.Completed(), elapsed
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 || e1 != e2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", c1, e1, c2, e2)
	}
}

func TestZipfReadsSkewTargets(t *testing.T) {
	env, sys := buildSys(t, 68)
	counts := map[string]int{}
	drv := workload.NewDriver(env, sys, 2, func(r resultAlias) {
		if r.Kind == mams.OpStat {
			counts[r.Path]++
		}
	})
	drv.Setup(2)
	drv.Preload(200, 8)
	drv.UseZipfReads(1.1)
	drv.RunOps(mams.OpStat, 5000, 8)
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Under uniform selection the max would be ~25/5000; Zipf(1.1) pushes
	// the hottest file far above that.
	if max < 100 {
		t.Fatalf("hottest file hit %d times; Zipf skew missing", max)
	}
}

type resultAlias = fsclient.Result
