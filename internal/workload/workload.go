// Package workload drives metadata operations against any of the simulated
// systems, reproducing the paper's load patterns: single-operation
// throughput runs (Fig. 5), mixed workloads (Fig. 6), and continuous
// create/mkdir streams during fault injection (Table I, Fig. 8).
package workload

import (
	"fmt"

	"mams/internal/cluster"
	"mams/internal/fsclient"
	"mams/internal/mams"
	"mams/internal/namespace"
	"mams/internal/rng"
	"mams/internal/sim"
)

// Mix assigns relative weights to operation kinds.
type Mix map[mams.OpKind]float64

// MixedPaper is Figure 6's workload: "mixed create, getfileinfo, and mkdir
// operations".
func MixedPaper() Mix {
	return Mix{mams.OpCreate: 0.4, mams.OpStat: 0.4, mams.OpMkdir: 0.2}
}

// CreateMkdir is the §IV.C failover workload: "continuous create and
// regular mkdir operations".
func CreateMkdir() Mix {
	return Mix{mams.OpCreate: 0.9, mams.OpMkdir: 0.1}
}

// Driver owns a set of clients and a file-name pool, and issues operations
// in closed loop.
type Driver struct {
	env     *cluster.Env
	sys     cluster.System
	clients []*fsclient.Client
	rng     *rng.RNG

	dirs    []string
	pool    []string // existing files (for stat/delete/rename)
	nameSeq int
	dirSeq  int
	zipf    *rng.Zipf // optional skewed read-target sampler

	completed int
	failed    int
}

// NewDriver attaches n clients to the system. onResult (may be nil)
// observes every operation.
func NewDriver(env *cluster.Env, sys cluster.System, n int, onResult func(fsclient.Result)) *Driver {
	d := &Driver{env: env, sys: sys, rng: env.RNG.Split("workload:" + sys.Name())}
	for i := 0; i < n; i++ {
		d.clients = append(d.clients, sys.NewClient(onResult))
	}
	return d
}

// Completed returns the number of finished operations.
func (d *Driver) Completed() int { return d.completed }

// Failed returns the number of failed operations.
func (d *Driver) Failed() int { return d.failed }

// Pool returns the current file pool size.
func (d *Driver) Pool() int { return len(d.pool) }

func (d *Driver) client(i int) *fsclient.Client {
	return d.clients[i%len(d.clients)]
}

// Setup creates the base directories used by the generators. It runs the
// world until done.
func (d *Driver) Setup(dirs int) {
	done := 0
	want := dirs
	for i := 0; i < dirs; i++ {
		dir := fmt.Sprintf("/bench/d%03d", i)
		d.dirs = append(d.dirs, dir)
	}
	d.env.World.Defer("workload-setup", func() {
		d.client(0).Mkdir("/bench", func(error) {
			for i, dir := range d.dirs {
				dir := dir
				d.client(i).Mkdir(dir, func(err error) { done++ })
			}
		})
	})
	deadline := d.env.Now() + 120*sim.Second
	for done < want && d.env.Now() < deadline {
		d.env.RunFor(100 * sim.Millisecond)
	}
	if done < want {
		panic("workload: setup did not finish")
	}
}

// UseZipfReads switches getfileinfo target selection from uniform to a
// Zipf(s) popularity distribution over the current pool.
func (d *Driver) UseZipfReads(s float64) {
	if len(d.pool) == 0 {
		d.zipf = rng.NewZipf(d.rng.Split("zipf"), 1, s)
		return
	}
	d.zipf = rng.NewZipf(d.rng.Split("zipf"), len(d.pool), s)
}

// Preload creates n files (spread over the directories) so read/delete/
// rename runs have targets. It runs the world until done.
func (d *Driver) Preload(n, concurrency int) {
	remaining := n
	completed := 0
	var issue func(ci int)
	issue = func(ci int) {
		if remaining == 0 {
			return
		}
		remaining--
		path := d.newPath()
		d.client(ci).Create(path, 1024, func(err error) {
			completed++
			if err == nil {
				d.pool = append(d.pool, path)
			}
			issue(ci)
		})
	}
	d.env.World.Defer("workload-preload", func() {
		for c := 0; c < concurrency; c++ {
			issue(c)
		}
	})
	deadline := d.env.Now() + 3600*sim.Second
	for completed < n && d.env.Now() < deadline {
		d.env.RunFor(250 * sim.Millisecond)
	}
	if completed < n {
		panic("workload: preload did not finish")
	}
}

func (d *Driver) newPath() string {
	d.nameSeq++
	dir := "/bench"
	if len(d.dirs) > 0 {
		dir = d.dirs[d.nameSeq%len(d.dirs)]
	}
	return fmt.Sprintf("%s/f%08d", dir, d.nameSeq)
}

func (d *Driver) newDirPath() string {
	d.dirSeq++
	dir := "/bench"
	if len(d.dirs) > 0 {
		dir = d.dirs[d.dirSeq%len(d.dirs)]
	}
	return fmt.Sprintf("%s/sub%08d", dir, d.dirSeq)
}

// issueOne fires a single operation of the given kind and calls done on
// completion.
func (d *Driver) issueOne(kind mams.OpKind, ci int, done func(err error)) {
	cl := d.client(ci)
	switch kind {
	case mams.OpCreate:
		path := d.newPath()
		cl.Create(path, 1024, func(err error) {
			if err == nil {
				d.pool = append(d.pool, path)
			}
			done(err)
		})
	case mams.OpMkdir:
		cl.Mkdir(d.newDirPath(), done)
	case mams.OpStat:
		if len(d.pool) == 0 {
			cl.Stat("/bench", func(_ *statInfo, err error) { done(err) })
			return
		}
		idx := d.rng.Intn(len(d.pool))
		if d.zipf != nil {
			// Skewed popularity: hot files dominate, as in real metadata
			// traces.
			idx = d.zipf.Draw() % len(d.pool)
		}
		path := d.pool[idx]
		cl.Stat(path, func(_ *statInfo, err error) { done(err) })
	case mams.OpDelete:
		if len(d.pool) == 0 {
			done(nil)
			return
		}
		i := d.rng.Intn(len(d.pool))
		path := d.pool[i]
		d.pool[i] = d.pool[len(d.pool)-1]
		d.pool = d.pool[:len(d.pool)-1]
		cl.Delete(path, done)
	case mams.OpRename:
		if len(d.pool) == 0 {
			done(nil)
			return
		}
		i := d.rng.Intn(len(d.pool))
		src := d.pool[i]
		dst := d.newPath()
		d.pool[i] = dst
		cl.Rename(src, dst, done)
	default:
		done(nil)
	}
}

// pick draws an operation kind from the mix.
func (d *Driver) pick(mix Mix) mams.OpKind {
	total := 0.0
	for _, w := range mix {
		total += w
	}
	u := d.rng.Float64() * total
	// Iterate kinds in a fixed order for determinism.
	order := []mams.OpKind{mams.OpCreate, mams.OpMkdir, mams.OpDelete, mams.OpRename, mams.OpStat, mams.OpList}
	for _, k := range order {
		w, ok := mix[k]
		if !ok {
			continue
		}
		if u < w {
			return k
		}
		u -= w
	}
	return mams.OpStat
}

// RunOps issues exactly n operations of one kind in closed loop with the
// given total concurrency and returns the elapsed virtual time.
func (d *Driver) RunOps(kind mams.OpKind, n, concurrency int) sim.Time {
	return d.run(Mix{kind: 1}, n, concurrency, 0)
}

// RunMix issues exactly n operations drawn from the mix.
func (d *Driver) RunMix(mix Mix, n, concurrency int) sim.Time {
	return d.run(mix, n, concurrency, 0)
}

// run drives the closed loop until n ops complete (or duration elapses if
// n == 0). The elapsed time is measured to the final completion, not to
// the polling boundary, so throughput has full virtual-clock resolution.
func (d *Driver) run(mix Mix, n, concurrency int, duration sim.Time) sim.Time {
	start := d.env.Now()
	lastDone := start
	issued, completed := 0, 0
	stop := false
	var issue func(ci int)
	issue = func(ci int) {
		if stop || (n > 0 && issued >= n) {
			return
		}
		issued++
		d.issueOne(d.pick(mix), ci, func(err error) {
			completed++
			d.completed++
			lastDone = d.env.Now()
			if err != nil {
				d.failed++
			}
			issue(ci)
		})
	}
	d.env.World.Defer("workload-run", func() {
		for c := 0; c < concurrency; c++ {
			issue(c)
		}
	})
	if n > 0 {
		deadline := d.env.Now() + 7200*sim.Second
		for completed < n && d.env.Now() < deadline {
			d.env.RunFor(250 * sim.Millisecond)
		}
		return lastDone - start
	}
	d.env.RunFor(duration)
	stop = true
	return d.env.Now() - start
}

// Continuous starts an open-ended closed-loop mix and returns a stop
// function. The caller advances the world.
func (d *Driver) Continuous(mix Mix, concurrency int) (stop func()) {
	stopped := false
	var issue func(ci int)
	issue = func(ci int) {
		if stopped {
			return
		}
		d.issueOne(d.pick(mix), ci, func(err error) {
			d.completed++
			if err != nil {
				d.failed++
			}
			issue(ci)
		})
	}
	d.env.World.Defer("workload-continuous", func() {
		for c := 0; c < concurrency; c++ {
			issue(c)
		}
	})
	return func() { stopped = true }
}

// statInfo aliases the namespace info type used by fsclient.Stat.
type statInfo = namespace.Info
