package mamsfs

import (
	"testing"

	"mams/internal/experiments"
	"mams/internal/mams"
)

// benchOpts keeps the macro-benchmarks to a few seconds each while
// preserving every artifact's shape. Run cmd/mamsbench -full for paper
// scale. Parallelism 0 fans independent trial cells across GOMAXPROCS
// workers; results are bit-identical to a sequential run.
func benchOpts() experiments.Options {
	return experiments.Options{Seed: 3, Ops: 3000, Trials: 1, Clients: 64, DataServers: 4, Parallelism: 0}
}

// BenchmarkFigure6Sequential pins the one-worker baseline so the parallel
// harness speedup (BenchmarkFigure6 vs this) is measurable on any machine.
func BenchmarkFigure6Sequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.Parallelism = 1
		res := experiments.Figure6(opts)
		b.ReportMetric(res.Tput["HDFS"], "hdfs-ops/s")
	}
}

// BenchmarkFigure5 regenerates the per-operation throughput matrix (HDFS vs
// MAMS-3A{3,6,9,12}S) and reports the headline cells.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure5(benchOpts())
		b.ReportMetric(res.Tput[mams.OpCreate]["HDFS"], "hdfs-create-ops/s")
		b.ReportMetric(res.Tput[mams.OpCreate]["MAMS-3A3S"], "cfs-create-ops/s")
		b.ReportMetric(res.Tput[mams.OpRename]["MAMS-3A3S"], "cfs-rename-ops/s")
	}
}

// BenchmarkFigure6 regenerates the mixed-workload comparison across the
// five reliability mechanisms.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure6(benchOpts())
		b.ReportMetric(res.Tput["HDFS"], "hdfs-ops/s")
		b.ReportMetric(res.Tput["CFS (MAMS-1A3S)"], "cfs-ops/s")
		b.ReportMetric(res.Tput["Hadoop HA"], "ha-ops/s")
	}
}

// BenchmarkTableI regenerates the MTTR-vs-image-size table at two
// representative sizes (full sweep: cmd/mamsbench -exp table1).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.TableI(benchOpts(), []int64{16, 256})
		b.ReportMetric(res.MTTR[16]["MAMS-1A3S"], "mams-16MB-s")
		b.ReportMetric(res.MTTR[256]["MAMS-1A3S"], "mams-256MB-s")
		b.ReportMetric(res.MTTR[256]["BackupNode"], "backupnode-256MB-s")
		b.ReportMetric(res.MTTR[256]["Hadoop HA"], "ha-256MB-s")
	}
}

// BenchmarkFigure7 regenerates the failover stage breakdown.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.Trials = 3
		res := experiments.Figure7(opts)
		if len(res.Trials) > 0 {
			tr := res.Trials[0]
			b.ReportMetric(tr.Election.Milliseconds(), "election-ms")
			b.ReportMetric(tr.Switching.Milliseconds(), "switching-ms")
			b.ReportMetric(tr.Reconnection.Milliseconds(), "reconnect-ms")
		}
	}
}

// BenchmarkTableII regenerates the three fault scenarios' state-transition
// sequences.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.TableII(benchOpts())
		b.ReportMetric(float64(len(res.Scenarios[experiments.TestA].States)), "testA-states")
		b.ReportMetric(float64(len(res.Scenarios[experiments.TestB].States)), "testB-states")
		b.ReportMetric(float64(len(res.Scenarios[experiments.TestC].States)), "testC-states")
	}
}

// BenchmarkFigure8 regenerates the requests/sec-under-faults time series.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure8(benchOpts())
		sc := res.Scenarios[experiments.TestA]
		pre := 0.0
		for j := 30; j < 55; j++ {
			pre += sc.Series.Rate(j)
		}
		b.ReportMetric(pre/25, "preFault-ops/s")
		b.ReportMetric(float64(sc.Failed), "failed-ops")
	}
}

// BenchmarkAblations regenerates the four design-choice ablations
// (standby count, session timeout, batch interval, sync-SSP commit).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		_ = experiments.AblationStandbys(opts)
		_ = experiments.AblationSessionTimeout(opts)
		_ = experiments.AblationBatchInterval(opts)
		a4 := experiments.AblationSyncSSP(opts)
		a5 := experiments.AblationPartitioning(opts)
		b.ReportMetric(float64(len(a4.Rows)), "sync-ssp-rows")
		b.ReportMetric(float64(len(a5.Rows)), "partitioning-rows")
	}
}

// BenchmarkFigure9 regenerates the MapReduce-under-failure comparison.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure9(benchOpts())
		b.ReportMetric(res.Failure["CFS (MAMS-3A9S)"].Seconds(), "cfs-failure-s")
		b.ReportMetric(res.Failure["Boom-FS"].Seconds(), "boom-failure-s")
		b.ReportMetric(res.MapImprovementPct, "map-advantage-%")
	}
}
